// Package ingest turns real-world edge lists into the engine's CSR graphs at
// scale. It parses the SNAP interchange format — whitespace/tab-separated
// "u v" lines with '#'/'%' comment headers, optionally gzip-compressed —
// in parallel: the input is split into byte ranges aligned to line
// boundaries, each worker scans its range into a private edge buffer, and a
// deterministic parallel merge (block sorts + pairwise merge rounds, then a
// canonical dedup pass) assembles the final graph. Self-loops and duplicate
// edges are eliminated and arbitrary 64-bit node IDs are remapped onto the
// dense [0, n) space the engine requires (ascending by raw ID, so the
// mapping is a pure function of the edge set).
//
// Like the build pipeline (DESIGN.md §"Parallel build pipeline"), ingestion
// is bit-identical for every worker count: chunking only changes which
// worker first sees a line, and every downstream step — ID table, remap,
// sort, dedup, CSR assembly — canonicalizes. Malformed input never panics;
// every parse failure wraps the typed ErrFormat (ErrLimit for inputs that
// exceed a configured or representational limit) and reports the smallest
// failing byte offset, which is likewise worker-count independent.
package ingest

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"pegasus/internal/graph"
	"pegasus/internal/par"
)

// ErrFormat is wrapped by every malformed-input failure: non-numeric tokens,
// missing fields, ID overflow, or a corrupt/truncated gzip stream.
var ErrFormat = errors.New("ingest: malformed edge list")

// ErrLimit is wrapped when a structurally valid input exceeds a limit: more
// distinct node IDs than fit a dense uint32 space, or a decompressed size
// above Options.MaxBytes.
var ErrLimit = errors.New("ingest: input exceeds limit")

// gzipMagic is the two-byte gzip stream header (RFC 1952).
var gzipMagic = []byte{0x1f, 0x8b}

// Options configures an ingestion run.
type Options struct {
	// Workers bounds the parse/merge goroutines (0 = GOMAXPROCS). Every
	// worker count produces a bit-identical graph and stats.
	Workers int
	// MaxBytes caps the (decompressed) input size in bytes; 0 means no cap.
	// Exceeding it fails with ErrLimit — the guard against gzip bombs when
	// ingesting untrusted uploads.
	MaxBytes int64
}

// Stats describes what one ingestion run saw and dropped. All counts are
// worker-count independent.
type Stats struct {
	// Lines is the number of data (non-comment, non-blank) lines parsed.
	Lines int64 `json:"lines"`
	// Comments counts '#'/'%' comment lines.
	Comments int64 `json:"comments"`
	// SelfLoops counts dropped u==v lines.
	SelfLoops int64 `json:"self_loops"`
	// Duplicates counts dropped repeat edges (after orientation
	// normalization: "u v" and "v u" are the same undirected edge).
	Duplicates int64 `json:"duplicates"`
	// Nodes and Edges describe the resulting graph.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
	// MaxRawID is the largest node ID seen in the input.
	MaxRawID uint64 `json:"max_raw_id"`
	// Remapped reports whether raw IDs required remapping (they were not
	// already exactly the dense set 0..Nodes-1).
	Remapped bool `json:"remapped"`
	// Gzip reports whether the input was gzip-compressed.
	Gzip bool `json:"gzip"`
	// Bytes is the decompressed input size.
	Bytes int64 `json:"bytes"`
}

// Result is an ingested graph plus its provenance.
type Result struct {
	Graph *graph.Graph
	// IDs maps each dense NodeID back to the raw input ID: IDs[i] is the
	// raw ID of node i. IDs is ascending (remapping preserves raw-ID
	// order), and IDs[i] == i for all i iff !Stats.Remapped.
	IDs   []uint64
	Stats Stats
}

// rawEdge is one parsed input edge, orientation-normalized to U < V in raw
// ID space. Remapping is monotone, so the normalization survives it.
type rawEdge struct{ U, V uint64 }

// chunkStats accumulates per-worker counts; all fields are commutative sums,
// so totals are independent of the chunking.
type chunkStats struct {
	lines, comments, selfLoops int64
	maxID                      uint64
}

// parseError records a failure at an absolute byte offset. When several
// chunks fail, the smallest offset wins, so the reported error does not
// depend on the worker count.
type parseError struct {
	off int64
	msg string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("ingest: byte offset %d: %s: %v", e.off, e.msg, ErrFormat)
}

func (e *parseError) Unwrap() error { return ErrFormat }

// ParseFile ingests an edge-list file. Gzip compression is detected from the
// stream content (not the file name), so "graph.txt.gz" and a misnamed
// "graph.txt" both work.
func ParseFile(path string, opt Options) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBytes(data, opt)
}

// Parse ingests an edge list from r (plain or gzip — detected from the
// leading magic bytes). The reader is drained into memory first: the
// parallel byte-range scan needs random access.
func Parse(r io.Reader, opt Options) (*Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: read input: %w", err)
	}
	return ParseBytes(data, opt)
}

// ParseBytes ingests an in-memory edge list (plain or gzip). This is the
// core entry point: everything else funnels here.
func ParseBytes(data []byte, opt Options) (*Result, error) {
	workers := par.Workers(opt.Workers)
	if workers < 1 {
		workers = 1
	}
	wasGzip := false
	if bytes.HasPrefix(data, gzipMagic) {
		plain, err := gunzip(data, opt.MaxBytes)
		if err != nil {
			return nil, err
		}
		data, wasGzip = plain, true
	}
	if opt.MaxBytes > 0 && int64(len(data)) > opt.MaxBytes {
		return nil, fmt.Errorf("ingest: input is %d bytes, cap is %d: %w", len(data), opt.MaxBytes, ErrLimit)
	}

	// Phase 1 — parallel chunked scan. Chunk k covers the lines whose first
	// byte falls in [k, k+1)·len/chunks; boundaries snap forward to the byte
	// after the next '\n', so every line is parsed by exactly one worker.
	chunks := workers
	if chunks > len(data) {
		chunks = len(data)
	}
	if chunks < 1 {
		chunks = 1
	}
	bufs := make([][]rawEdge, chunks)
	stats := make([]chunkStats, chunks)
	errs := make([]*parseError, chunks)
	par.ForEach(workers, chunks, func(_, k int) {
		lo := chunkStart(data, k, chunks)
		hi := chunkStart(data, k+1, chunks)
		bufs[k], stats[k], errs[k] = parseChunk(data[lo:hi], int64(lo))
	})
	var st Stats
	st.Bytes = int64(len(data))
	st.Gzip = wasGzip
	var firstErr *parseError
	for k := 0; k < chunks; k++ {
		if e := errs[k]; e != nil && (firstErr == nil || e.off < firstErr.off) {
			firstErr = e
		}
		st.Lines += stats[k].lines
		st.Comments += stats[k].comments
		st.SelfLoops += stats[k].selfLoops
		if stats[k].maxID > st.MaxRawID {
			st.MaxRawID = stats[k].maxID
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Concatenate per-chunk buffers in chunk order. The order is the file
	// order, but nothing downstream depends on it: sort+dedup canonicalize.
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	edges := make([]rawEdge, 0, total)
	for _, b := range bufs {
		edges = append(edges, b...)
	}
	bufs = nil

	// Phase 2 — dense ID table: sort every endpoint, compact to the unique
	// ascending raw-ID list. Ascending order makes the dense mapping a pure
	// function of the edge set (and monotone, preserving U < V).
	ids := make([]uint64, 0, 2*len(edges))
	for _, e := range edges {
		ids = append(ids, e.U, e.V)
	}
	par.SortUint64(ids, workers)
	ids = compactUnique(ids)
	if len(ids) > math.MaxUint32 {
		return nil, fmt.Errorf("ingest: %d distinct node IDs exceed the dense uint32 space: %w", len(ids), ErrLimit)
	}
	n := len(ids)
	st.Remapped = n > 0 && !(ids[0] == 0 && ids[n-1] == uint64(n-1))

	// Phase 3 — remap and pack. Each edge becomes u<<32|v with dense u < v;
	// packed keys sort and compare as plain integers.
	packed := make([]uint64, len(edges))
	if st.Remapped {
		par.Range(workers, len(edges), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u, _ := slices.BinarySearch(ids, edges[i].U)
				v, _ := slices.BinarySearch(ids, edges[i].V)
				packed[i] = uint64(u)<<32 | uint64(v)
			}
		})
	} else {
		par.Range(workers, len(edges), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				packed[i] = edges[i].U<<32 | edges[i].V
			}
		})
	}
	edges = nil

	// Phase 4 — deterministic parallel merge: block sorts, pairwise merge
	// rounds, then one canonical dedup pass.
	par.SortUint64(packed, workers)
	deduped, dups := dedupSorted(packed)
	st.Duplicates = dups
	st.Edges = int64(len(deduped))
	st.Nodes = n

	// Phase 5 — parallel CSR assembly.
	final := make([]graph.Edge, len(deduped))
	par.Range(workers, len(deduped), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			final[i] = graph.Edge{U: graph.NodeID(deduped[i] >> 32), V: graph.NodeID(deduped[i] & 0xffffffff)}
		}
	})
	g := graph.FromSortedEdges(n, final, workers)
	return &Result{Graph: g, IDs: ids, Stats: st}, nil
}

// gunzip decompresses a gzip stream fully into memory, with maxBytes (0 = no
// cap) bounding the decompressed size. Corrupt or truncated streams fail
// with ErrFormat; oversized ones with ErrLimit.
func gunzip(data []byte, maxBytes int64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("ingest: gzip header: %v: %w", err, ErrFormat)
	}
	var limit int64 = math.MaxInt64 - 1
	if maxBytes > 0 {
		limit = maxBytes
	}
	var out bytes.Buffer
	nr, err := io.Copy(&out, io.LimitReader(zr, limit+1))
	if err != nil {
		return nil, fmt.Errorf("ingest: gzip stream: %v: %w", err, ErrFormat)
	}
	if nr > limit {
		return nil, fmt.Errorf("ingest: decompressed input exceeds %d bytes: %w", maxBytes, ErrLimit)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("ingest: gzip trailer: %v: %w", err, ErrFormat)
	}
	return out.Bytes(), nil
}

// chunkStart returns the byte offset where chunk k of `chunks` begins: the
// byte after the first '\n' at or beyond the proportional split point
// (chunk 0 starts at 0; a chunk whose split point lands beyond the last
// newline is empty).
func chunkStart(data []byte, k, chunks int) int {
	if k <= 0 {
		return 0
	}
	if k >= chunks {
		return len(data)
	}
	off := int(int64(k) * int64(len(data)) / int64(chunks))
	if off >= len(data) {
		return len(data)
	}
	nl := bytes.IndexByte(data[off:], '\n')
	if nl < 0 {
		return len(data)
	}
	return off + nl + 1
}

// parseChunk scans one byte range (whole lines) into an edge buffer. base is
// the chunk's absolute offset, used only for error reporting.
func parseChunk(data []byte, base int64) ([]rawEdge, chunkStats, *parseError) {
	var st chunkStats
	var out []rawEdge
	for pos := 0; pos < len(data); {
		end := bytes.IndexByte(data[pos:], '\n')
		var line []byte
		next := len(data)
		if end >= 0 {
			line = data[pos : pos+end]
			next = pos + end + 1
		} else {
			line = data[pos:]
		}
		if ln := len(line); ln > 0 && line[ln-1] == '\r' {
			line = line[:ln-1] // CRLF
		}
		i, n := 0, len(line)
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		switch {
		case i == n: // blank
		case line[i] == '#' || line[i] == '%':
			st.comments++
		default:
			u, ui, perr := parseUint(line, i, base+int64(pos))
			if perr != nil {
				return nil, st, perr
			}
			if ui == n || (line[ui] != ' ' && line[ui] != '\t') {
				return nil, st, &parseError{off: base + int64(pos) + int64(ui), msg: "want two whitespace-separated node IDs"}
			}
			j := ui
			for j < n && (line[j] == ' ' || line[j] == '\t') {
				j++
			}
			v, vi, perr := parseUint(line, j, base+int64(pos))
			if perr != nil {
				return nil, st, perr
			}
			// Anything after the second ID must be separated: extra columns
			// (SNAP timestamps, weights) are tolerated and ignored.
			if vi < n && line[vi] != ' ' && line[vi] != '\t' {
				return nil, st, &parseError{off: base + int64(pos) + int64(vi), msg: fmt.Sprintf("trailing garbage %q after node ID", line[vi])}
			}
			st.lines++
			if u > st.maxID {
				st.maxID = u
			}
			if v > st.maxID {
				st.maxID = v
			}
			if u == v {
				st.selfLoops++
			} else {
				if u > v {
					u, v = v, u
				}
				out = append(out, rawEdge{U: u, V: v})
			}
		}
		pos = next
	}
	return out, st, nil
}

// parseUint parses a decimal uint64 from line starting at i, returning the
// value and the index one past its last digit. lineOff is the line's
// absolute byte offset.
func parseUint(line []byte, i int, lineOff int64) (uint64, int, *parseError) {
	if i >= len(line) || line[i] < '0' || line[i] > '9' {
		got := "end of line"
		if i < len(line) {
			got = fmt.Sprintf("%q", line[i])
		}
		return 0, 0, &parseError{off: lineOff + int64(i), msg: "want a decimal node ID, got " + got}
	}
	var v uint64
	for ; i < len(line) && line[i] >= '0' && line[i] <= '9'; i++ {
		d := uint64(line[i] - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, 0, &parseError{off: lineOff + int64(i), msg: "node ID overflows uint64"}
		}
		v = v*10 + d
	}
	return v, i, nil
}

// compactUnique removes adjacent duplicates from a sorted slice in place.
func compactUnique(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// dedupSorted compacts a sorted packed-edge slice in place and counts the
// dropped duplicates.
func dedupSorted(s []uint64) ([]uint64, int64) {
	out := s[:0]
	var dups int64
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			dups++
			continue
		}
		out = append(out, v)
	}
	return out, dups
}
