package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"pegasus/internal/graph"
)

// WriteSNAP writes g in the SNAP edge-list interchange format: a comment
// header followed by one tab-separated "u\tv" line per undirected edge
// (u < v). The output round-trips through Parse back to a bit-identical
// graph (node IDs are already dense, so no remapping occurs).
func WriteSNAP(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Undirected graph (each unordered pair of nodes is saved once)\n# Nodes: %d Edges: %d\n# FromNodeId\tToNodeId\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	buf := make([]byte, 0, 24)
	g.Edges(func(u, v graph.NodeID) bool {
		buf = strconv.AppendUint(buf[:0], uint64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
