package ingest

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseEdgeList drives the full ingestion pipeline on arbitrary bytes.
// The invariants, in order:
//
//  1. no panic, ever;
//  2. every failure is typed (wraps ErrFormat or ErrLimit);
//  3. success is worker-count invariant (bit-identical graph, equal stats);
//  4. a parsed graph is structurally valid and round-trips:
//     Parse(WriteSNAP(G)) == G with no remapping.
//
// The committed corpus under testdata/fuzz/FuzzParseEdgeList seeds the
// interesting regions: comment dialects, CRLF, malformed tokens, huge IDs,
// sparse-ID remaps, and truncated gzip streams.
func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("1 2\n2 3\n"))
	f.Add([]byte("# c\n5\t7\r\n7\t5\n5 5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// MaxBytes bounds gzip expansion so a fuzz-found "bomb" degrades
		// into a typed ErrLimit instead of an OOM.
		opt := Options{Workers: 1, MaxBytes: 1 << 20}
		r1, err := ParseBytes(data, opt)
		if err != nil {
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if err := r1.Graph.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}

		b1 := fuzzGraphBytes(t, r1)
		for _, w := range []int{3, 8} {
			rw, err := ParseBytes(data, Options{Workers: w, MaxBytes: 1 << 20})
			if err != nil {
				t.Fatalf("workers=%d failed where workers=1 succeeded: %v", w, err)
			}
			if !bytes.Equal(fuzzGraphBytes(t, rw), b1) {
				t.Fatalf("workers=%d graph differs from workers=1", w)
			}
			if rw.Stats != r1.Stats {
				t.Fatalf("workers=%d stats %+v differ from workers=1 %+v", w, rw.Stats, r1.Stats)
			}
		}

		// Round-trip: the dense re-encoding must parse back bit-identically.
		var enc bytes.Buffer
		if err := WriteSNAP(&enc, r1.Graph); err != nil {
			t.Fatalf("WriteSNAP: %v", err)
		}
		r2, err := ParseBytes(enc.Bytes(), Options{Workers: 2})
		if err != nil {
			t.Fatalf("re-parse of encoded graph failed: %v", err)
		}
		if r2.Stats.Remapped {
			t.Fatal("re-parse of dense encoding required remapping")
		}
		if !bytes.Equal(fuzzGraphBytes(t, r2), b1) {
			t.Fatal("Parse(WriteSNAP(G)) != G")
		}
	})
}

func fuzzGraphBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	return graphBytes(t, r.Graph)
}
