package ingest

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/par"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// graphBytes returns the canonical binary serialization of g — the
// bit-identity yardstick used throughout this suite.
func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestParseBasic(t *testing.T) {
	in := "# SNAP-style header\r\n" +
		"% matrix-market-style comment\n" +
		"\n" +
		"10\t30\n" +
		"30 10\n" + // duplicate, reversed orientation
		"  20  10  \n" +
		"20\t20\n" + // self-loop
		"10 30 1234567890\n" + // extra column (timestamp) ignored; duplicate
		"30\t40\r\n"
	res, err := ParseBytes([]byte(in), Options{Workers: 2})
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	st := res.Stats
	if st.Lines != 6 || st.Comments != 2 || st.SelfLoops != 1 || st.Duplicates != 2 {
		t.Fatalf("stats = %+v, want 6 lines / 2 comments / 1 self-loop / 2 duplicates", st)
	}
	if st.Nodes != 4 || st.Edges != 3 {
		t.Fatalf("got %d nodes %d edges, want 4 / 3", st.Nodes, st.Edges)
	}
	if !st.Remapped || st.MaxRawID != 40 {
		t.Fatalf("Remapped=%v MaxRawID=%d, want true / 40", st.Remapped, st.MaxRawID)
	}
	wantIDs := []uint64{10, 20, 30, 40}
	for i, id := range wantIDs {
		if res.IDs[i] != id {
			t.Fatalf("IDs = %v, want %v", res.IDs, wantIDs)
		}
	}
	g := res.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Dense graph: 10→0, 20→1, 30→2, 40→3; edges {0,2},{0,1},{2,3}.
	for _, e := range []graph.Edge{{U: 0, V: 2}, {U: 0, V: 1}, {U: 2, V: 3}} {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %v in %v", e, g.EdgeList())
		}
	}
}

func TestParseDenseIDsNotRemapped(t *testing.T) {
	res, err := ParseBytes([]byte("0 1\n1 2\n2 0\n"), Options{})
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	if res.Stats.Remapped {
		t.Fatalf("dense 0..2 input reported Remapped")
	}
	for i, id := range res.IDs {
		if id != uint64(i) {
			t.Fatalf("IDs[%d] = %d, want identity", i, id)
		}
	}
}

func TestParseEmptyAndCommentOnly(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# only comments\n% more\n"} {
		res, err := ParseBytes([]byte(in), Options{Workers: 3})
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", in, err)
		}
		if res.Stats.Nodes != 0 || res.Stats.Edges != 0 || res.Graph.NumNodes() != 0 {
			t.Fatalf("ParseBytes(%q) = %+v, want empty graph", in, res.Stats)
		}
	}
}

func TestParseGzip(t *testing.T) {
	plain := []byte("# header\n1 2\n2 3\n")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	rz, err := ParseBytes(zbuf.Bytes(), Options{})
	if err != nil {
		t.Fatalf("gzip ParseBytes: %v", err)
	}
	rp, err := ParseBytes(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rz.Stats.Gzip || rp.Stats.Gzip {
		t.Fatalf("Gzip flags: compressed=%v plain=%v", rz.Stats.Gzip, rp.Stats.Gzip)
	}
	if !bytes.Equal(graphBytes(t, rz.Graph), graphBytes(t, rp.Graph)) {
		t.Fatal("gzip and plain inputs produced different graphs")
	}
}

func TestParseErrorsAreTyped(t *testing.T) {
	zbomb := func() []byte { // valid header, truncated stream
		var b bytes.Buffer
		zw := gzip.NewWriter(&b)
		_, _ = zw.Write([]byte("1 2\n2 3\n4 5\n"))
		_ = zw.Close()
		return b.Bytes()[:b.Len()-5]
	}()
	cases := []struct {
		name string
		in   []byte
		opt  Options
		want error
	}{
		{"alpha token", []byte("1 2\nfoo bar\n"), Options{}, ErrFormat},
		{"missing field", []byte("12\n"), Options{}, ErrFormat},
		{"negative", []byte("-1 2\n"), Options{}, ErrFormat},
		{"junk after number", []byte("12x 13\n"), Options{}, ErrFormat},
		{"trailing garbage", []byte("12 13x\n"), Options{}, ErrFormat},
		{"uint64 overflow", []byte("99999999999999999999999 1\n"), Options{}, ErrFormat},
		{"truncated gzip", zbomb, Options{}, ErrFormat},
		{"bad gzip body", append([]byte{0x1f, 0x8b}, []byte("garbage")...), Options{}, ErrFormat},
		{"plain over cap", []byte("1 2\n2 3\n"), Options{MaxBytes: 4}, ErrLimit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBytes(tc.in, tc.opt)
			if err == nil {
				t.Fatalf("ParseBytes(%q) succeeded, want %v", tc.in, tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("ParseBytes(%q) = %v, not typed %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestParseErrorOffsetWorkerIndependent(t *testing.T) {
	// Two malformed lines in different chunks: every worker count must
	// report the earlier one.
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	in := []byte(sb.String())
	bad := []byte("BAD LINE\n")
	in = append(in[:len(in)/3], append(append([]byte{}, bad...), append(in[len(in)/3:], bad...)...)...)
	var want string
	for _, w := range []int{1, 2, 3, 8} {
		_, err := ParseBytes(in, Options{Workers: w})
		if err == nil {
			t.Fatalf("workers=%d: no error", w)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d error %q differs from workers=1 error %q", w, err, want)
		}
	}
}

// TestParsedMatchesBuilder is the PR's core property: for random graphs
// rendered as messy edge-list text, the parallel ingester at every worker
// count must produce a CSR bit-identical to feeding the same edge set
// through graph.Builder one edge at a time.
func TestParsedMatchesBuilder(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		// BA graphs are connected, so every node appears in some edge and
		// the ingester's dense remap is the identity — the Builder reference
		// (which declares n nodes up front) then describes the same graph.
		g := gen.BarabasiAlbert(n, 2+rng.Intn(4), seed)

		// The reference: Builder fed one edge at a time.
		b := graph.NewBuilder(g.NumNodes())
		g.Edges(func(u, v graph.NodeID) bool {
			b.AddEdge(u, v)
			return true
		})
		want := graphBytes(t, b.Build())

		// Messy rendering: shuffled order, random orientation, duplicate
		// lines, self-loops, comments, CRLF, mixed separators.
		edges := g.EdgeList()
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		var sb strings.Builder
		sb.WriteString("# messy render\n")
		seps := []string{" ", "\t", "  ", " \t "}
		for _, e := range edges {
			u, v := uint64(e.U), uint64(e.V)
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			eol := "\n"
			if rng.Intn(4) == 0 {
				eol = "\r\n"
			}
			fmt.Fprintf(&sb, "%d%s%d%s", u, seps[rng.Intn(len(seps))], v, eol)
			if rng.Intn(8) == 0 { // duplicate line
				fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
			}
			if rng.Intn(16) == 0 { // self-loop
				fmt.Fprintf(&sb, "%d %d\n", u, u)
			}
			if rng.Intn(16) == 0 {
				sb.WriteString("# interleaved comment\n")
			}
		}
		in := []byte(sb.String())

		var first *Result
		for _, w := range []int{1, 2, 8} {
			res, err := ParseBytes(in, Options{Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("seed %d workers %d: invalid CSR: %v", seed, w, err)
			}
			if got := graphBytes(t, res.Graph); !bytes.Equal(got, want) {
				t.Fatalf("seed %d workers %d: ingested CSR differs from graph.Builder reference", seed, w)
			}
			if first == nil {
				first = res
			} else if res.Stats != first.Stats {
				t.Fatalf("seed %d workers %d: stats %+v differ from workers=1 stats %+v", seed, w, res.Stats, first.Stats)
			}
		}
	}
}

// TestParallelMergeRace drives the parallel parse+merge with many workers on
// a shared input; run under -race (CI does) it covers the merge's goroutine
// interactions.
func TestParallelMergeRace(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 4, 7)
	var buf bytes.Buffer
	if err := WriteSNAP(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := graphBytes(t, g)
	for _, w := range []int{2, 4, 8, 16} {
		res, err := ParseBytes(buf.Bytes(), Options{Workers: w})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if !bytes.Equal(graphBytes(t, res.Graph), want) {
			t.Fatalf("workers %d: merge produced a different graph", w)
		}
	}
}

func TestSNAPRoundTrip(t *testing.T) {
	g := gen.PlantedPartition(gen.SBMConfig{Nodes: 500, Communities: 5, AvgDegree: 8, MixingP: 0.1}, 11)
	var buf bytes.Buffer
	if err := WriteSNAP(&buf, g); err != nil {
		t.Fatalf("WriteSNAP: %v", err)
	}
	res, err := ParseBytes(buf.Bytes(), Options{Workers: 4})
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	if res.Stats.Remapped {
		t.Fatal("round-trip of dense graph required remapping")
	}
	if !bytes.Equal(graphBytes(t, res.Graph), graphBytes(t, g)) {
		t.Fatal("Parse(WriteSNAP(g)) != g")
	}
	if res.Stats.Edges != g.NumEdges() || res.Stats.Nodes != g.NumNodes() {
		t.Fatalf("stats %d/%d, want %d/%d", res.Stats.Nodes, res.Stats.Edges, g.NumNodes(), g.NumEdges())
	}
}

func TestParseFileGzipOnDisk(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	var plain bytes.Buffer
	if err := WriteSNAP(&plain, g); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/g.txt.gz"
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, zbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	res, err := ParseFile(path, Options{})
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if !res.Stats.Gzip {
		t.Fatal("gzip not detected")
	}
	if !bytes.Equal(graphBytes(t, res.Graph), graphBytes(t, g)) {
		t.Fatal("ParseFile(gzip) != original graph")
	}
}

func TestSortUint64MatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []int{0, 1, 1000, 1 << 17, 1<<18 + 12345} {
		a := make([]uint64, size)
		for i := range a {
			a[i] = rng.Uint64() % 1000
		}
		b := append([]uint64(nil), a...)
		par.SortUint64(a, 8)
		par.SortUint64(b, 1)
		if !equalU64(a, b) {
			t.Fatalf("size %d: parallel sort differs from sequential", size)
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				t.Fatalf("size %d: not sorted at %d", size, i)
			}
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
