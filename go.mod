module pegasus

go 1.24
