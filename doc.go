// Package pegasus is a Go implementation of PeGaSus — Personalized Graph
// Summarization with Scalability (Kang, Lee & Shin, "Personalized Graph
// Summarization: Formulation, Scalable Algorithms, and Applications",
// ICDE 2022) — together with everything needed to use and evaluate it:
// graph construction and generators, the SSumM / k-GraSS / SAAGs / S2L
// baselines, approximate query answering on summary graphs (RWR, HOP, PHP),
// accuracy metrics, graph partitioning (Louvain, BLP, SHP) and
// communication-free distributed multi-query answering.
//
// # Quick start
//
//	g, _ := pegasus.LoadGraph("graph.txt") // "u v" edge list
//	res, _ := pegasus.Summarize(g, pegasus.Config{
//		Targets:     []pegasus.NodeID{42},  // personalize around node 42
//		BudgetRatio: 0.5,                   // half the bits of the input
//	})
//	s := res.Summary
//	neighbors := s.Neighbors(42)           // approximate neighborhood (Alg. 4)
//	scores, _ := pegasus.SummaryRWR(s, 42, pegasus.RWRConfig{})
//
// The summary graph s is a partition of the nodes into supernodes plus a
// sparse set of superedges; many graph algorithms run directly on it through
// the neighborhood query, trading exactness for memory.
//
// # Parallel builds
//
// Summarization is parallel end to end: Config.Workers bounds the build
// pipeline (0 selects GOMAXPROCS), SummarizeCtx aborts mid-build on context
// cancellation, and BuildSummaryCluster constructs its per-shard summaries
// concurrently — the §IV scheme is communication-free, so shard builds are
// independent. Candidate generation (the §III-C shingle grouping) runs as
// a parallel stable radix sort, and Config.LSHBands/Config.LSHRows
// (default off) switch it to banded MinHash-LSH seeding — two supernodes
// with neighborhood similarity s share a candidate group with probability
// 1-(1-s^r)^b. Every worker count produces bit-identical output for a
// fixed seed; see DESIGN.md "The parallel build pipeline".
//
// # Serving
//
// pegasus-serve runs the §IV application as a daemon: it builds a summary —
// or, with -shards N, a cluster of per-part personalized summaries with a
// node→shard routing table — and answers queries over HTTP with a
// query-result cache, a bounded worker pool and per-request timeouts:
//
//	go run ./cmd/pegasus-serve -graph g.txt -shards 4 -partition louvain
//	curl -s -X POST localhost:8080/v1/query/rwr  -d '{"node": 42}'
//	curl -s -X POST localhost:8080/v1/query/topk -d '{"node": 42, "k": 5}'
//	curl -s localhost:8080/metrics
//
// (Omit -graph to serve a generated SBM graph.) Programmatic use goes
// through Serve / NewServer with a ServerConfig.
//
// # Ingesting real graphs
//
// Real-world edge lists (SNAP-style: whitespace-separated "u v" lines,
// '#' comments, optionally gzip-compressed, with duplicate edges,
// self-loops and sparse 64-bit node IDs) are loaded through the streaming
// parallel ingester, which cleans the edge set, remaps IDs onto the dense
// [0, n) space and assembles the CSR directly — bit-identical for every
// worker count:
//
//	res, _ := pegasus.IngestEdgeListFile("web-Stanford.txt.gz", pegasus.IngestOptions{})
//	g, raw := res.Graph, res.IDs            // raw[dense] = original 64-bit ID
//	fmt.Println(res.Stats.Duplicates)       // what the cleaner dropped
//
// Failures are typed (ErrIngestFormat, ErrIngestLimit — never a panic;
// fuzzed in internal/ingest), and WriteSNAP is the inverse. On the command
// line, pegasus-ingest preprocesses offline and pegasus-serve -ingest
// serves an edge list directly:
//
//	go run ./cmd/pegasus-ingest -in web-Stanford.txt.gz -verify -stats
//	go run ./cmd/pegasus-serve  -ingest web-Stanford.txt.gz -shards 4
//	go run ./cmd/pegasus-gen    -model ba -n 100000 -m 8 -format snap -out g.txt.gz
//
// # Batch queries
//
// Serving workloads are multi-query (§IV/§V: one summary answers many
// queries), so the daemon also takes a whole vector of query nodes in one
// round-trip — one kind, shared parameters, per-item results and errors:
//
//	curl -s -X POST localhost:8080/v1/query/batch \
//	  -d '{"kind": "rwr", "nodes": [1, 2, 42], "restart": 0.1}'
//
// The server routes the vector in one pass, answers per-shard groups
// concurrently, and amortizes the per-query precompute through a shared
// evaluation session. The same amortization is available in-process:
//
//	scores, _ := pegasus.SummaryRWRBatch(s, []pegasus.NodeID{1, 2, 42}, pegasus.RWRConfig{})
//	probs, _ := pegasus.SummaryPHPBatch(s, []pegasus.NodeID{1, 2, 42}, pegasus.PHPConfig{})
//	sess := pegasus.NewSummaryQuerySession(s) // or drive a session directly
//	a, _ := sess.RWR(1, pegasus.RWRConfig{})
//	b, _ := sess.PHP(2, pegasus.PHPConfig{})
//
// # Incremental re-summarization
//
// POST /v1/summarize hot-rebuilds the serving artifact, and the rebuild is
// incremental: every shard summary carries a content key (graph, resolved
// target set, budget share, engine config), and only shards whose key
// changed are rebuilt — the rest are transplanted bit-identically along
// with their cached query answers. On a 4-shard server, changing the
// targets inside one shard's part rebuilds exactly that shard:
//
//	curl -s -X POST localhost:8080/v1/summarize -d '{"targets": [17, 23]}'
//	// => {"generation": 2, ..., "rebuilt": 1, "reused": 3}
//	curl -s -X POST localhost:8080/v1/summarize -d '{}'
//	// => no-op: {"generation": 3, ..., "rebuilt": 0, "reused": 4}
//
// In-process, the same reuse is BuildSummaryClusterIncremental with a
// previous cluster:
//
//	c2, stats, _ := pegasus.BuildSummaryClusterIncremental(ctx, g, labels, 4, budget, cfg,
//		pegasus.ClusterBuildOptions{Targets: newTargets, Prev: c1})
//	// stats.Rebuilt == 1, stats.Reused == 3
//
// # Disk-backed artifacts and warm starts
//
// The same content keys give shard artifacts durable on-disk names: with
// pegasus-serve -cache-dir (ServerConfig.CacheDir), every built shard
// summary is persisted at <dir>/<shardkey>.pgsum in a versioned,
// checksummed binary format, and a restarted server decodes its cluster
// from disk instead of re-running summarization — bit-identical to a cold
// build, ~90x faster on the bench graph. Corrupt or version-mismatched
// artifacts are rebuilt (typed ErrArtifactCorrupt/ErrArtifactVersion,
// never a panic). In-process:
//
//	store, _ := pegasus.OpenArtifactStore("/var/cache/pegasus")
//	c1, stats, _ := pegasus.BuildSummaryClusterIncremental(ctx, g, labels, 4, budget, cfg,
//		pegasus.ClusterBuildOptions{Store: store}) // builds 4, persists 4
//	c2, stats, _ := pegasus.BuildSummaryClusterIncremental(ctx, g, labels, 4, budget, cfg,
//		pegasus.ClusterBuildOptions{Store: store}) // stats.Loaded == 4: pure decode
//
// # Contributing: enforced invariants
//
// The contracts the implementation depends on — no unordered map
// iteration in determinism-critical packages, unbroken context
// propagation, no blocking waits while holding a worker-pool slot, typed
// ErrCorrupt/ErrVersion errors in the persistence layer, and
// all-atomic-or-all-plain counter access — are mechanically enforced by
// `go run ./cmd/pegasus-lint ./...`, which must exit 0 (CI runs it, and
// TestRepoIsClean runs the same check in the test suite). A deliberate
// exception carries a `//lint:<directive> <justification>` annotation on
// the flagged line or the line above. See DESIGN.md, "Enforced
// invariants".
//
// See API.md for the complete HTTP reference (every endpoint, schema,
// status code and parameter-default rule), DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package pegasus
