//go:build scale

// Scale smoke: the real-graph serving path at the 10^5-node tier, behind the
// "scale" build tag so the regular `go test ./...` tier-1 run never pays for
// it. CI runs it as a dedicated step:
//
//	go test -tags scale -run 'TestScale' -timeout 15m .
//
// Under -short the node scale drops 10x (for a quick local
// `go test -tags scale -short .`).
package pegasus_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"testing"
	"time"

	"pegasus"
	"pegasus/internal/datasets"
)

// TestScaleSmoke drives 10^5 nodes end to end — gzip SNAP encode, parallel
// ingest (verified bit-identical to the sequential ingest and to the source
// graph), sharded cluster build, 100 routed RWR queries — under a wall-clock
// budget. The budget is deliberately loose (~3x this path's cost on a
// single-core container): it is not a performance gate, it exists to catch
// accidental O(|V|²) regressions, which overshoot it by orders of magnitude.
func TestScaleSmoke(t *testing.T) {
	// Alg. 3 summarizes the whole graph once per shard, so the smoke keeps
	// the shard count at 2: enough to exercise routing and the concurrent
	// shard builds without multiplying the 10^5-node summarization cost.
	const timeBudget = 8 * time.Minute
	shards, scale := 2, 1.0
	if testing.Short() {
		scale = 0.1
	}
	start := time.Now()

	d, err := datasets.ByShort("S5")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(scale)
	wantFP := pegasus.GraphFingerprint(g)
	t.Logf("generated %s at scale %g: |V|=%d |E|=%d", d.Name, scale, g.NumNodes(), g.NumEdges())

	var enc bytes.Buffer
	zw := gzip.NewWriter(&enc)
	if err := pegasus.WriteSNAP(zw, g); err != nil {
		t.Fatalf("encode SNAP: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}

	res, err := pegasus.IngestEdgeListBytes(enc.Bytes(), pegasus.IngestOptions{})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if fp := pegasus.GraphFingerprint(res.Graph); fp != wantFP {
		t.Fatalf("ingested fingerprint %s != source %s — SNAP round-trip broken", fp, wantFP)
	}
	seq, err := pegasus.IngestEdgeListBytes(enc.Bytes(), pegasus.IngestOptions{Workers: 1})
	if err != nil {
		t.Fatalf("sequential ingest: %v", err)
	}
	if fp := pegasus.GraphFingerprint(seq.Graph); fp != wantFP || seq.Stats != res.Stats {
		t.Fatal("parallel and sequential ingests disagree — worker-count bit-identity broken")
	}
	ig := res.Graph

	labels, err := pegasus.PartitionGraph(ig, shards, pegasus.PartitionRandom, 1)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	c, err := pegasus.BuildSummaryClusterCtx(context.Background(), ig, labels, shards,
		0.7*ig.SizeBits(), pegasus.Config{Seed: 1, Workers: 1}, 0)
	if err != nil {
		t.Fatalf("cluster build: %v", err)
	}
	t.Logf("built %d-shard cluster in %v total elapsed", shards, time.Since(start).Round(time.Millisecond))

	qcfg := pegasus.RWRConfig{Eps: 1e-300, MaxIter: 6}
	for i := 0; i < 100; i++ {
		q := pegasus.NodeID((i * 9973) % ig.NumNodes())
		scores, err := c.RWR(q, qcfg)
		if err != nil {
			t.Fatalf("query %d (node %d): %v", i, q, err)
		}
		sum := 0.0
		for _, s := range scores {
			if s < 0 {
				t.Fatalf("query %d: negative RWR score %g", i, s)
			}
			sum += s
		}
		if sum <= 0 {
			t.Fatalf("query %d: all-zero RWR scores", i)
		}
	}

	if el := time.Since(start); el > timeBudget {
		t.Fatalf("scale smoke took %v, budget %v — superlinear regression on the ingest/build/query path", el, timeBudget)
	}
}

// TestScaleGoldenFingerprintS6 pins the 10^6-node fallback (the S5 pin runs
// untagged in internal/datasets). Drift means every committed -scale-large
// benchmark row silently describes a different graph.
func TestScaleGoldenFingerprintS6(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 10^6-node graph")
	}
	d, err := datasets.ByShort("S6")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(1)
	if g.NumNodes() != 1_000_000 {
		t.Fatalf("|V| = %d, want 1000000", g.NumNodes())
	}
	if g.NumEdges() != 7_999_964 {
		t.Fatalf("|E| = %d, want 7999964", g.NumEdges())
	}
	const golden = "d77a845abc8023d0b363421194e85efab0570802e03086a774eec76b4b6f29b8"
	if fp := pegasus.GraphFingerprint(g); fp != golden {
		t.Fatalf("S6 fingerprint drifted:\n got  %s\n want %s", fp, golden)
	}
}
