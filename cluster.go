package pegasus

import (
	"context"
	"fmt"

	"pegasus/internal/core"
	"pegasus/internal/distributed"
	"pegasus/internal/par"
	"pegasus/internal/partition"
)

// Distributed "communication-free" multi-query answering (§IV of the paper):
// partition the node set over m machines, give each machine a summary
// personalized to its part (or a size-bounded local subgraph), and route
// every query to the machine owning the query node — no inter-machine
// communication at query time.

type (
	// Cluster is a set of machines plus the node→machine routing table.
	Cluster = distributed.Cluster
	// Machine is one worker holding a summary or a subgraph.
	Machine = distributed.Machine
)

// Partitioning method names accepted by PartitionGraph.
const (
	PartitionLouvain = string(partition.MethodLouvain)
	PartitionBLP     = string(partition.MethodBLP)
	PartitionSHPI    = string(partition.MethodSHPI)
	PartitionSHPII   = string(partition.MethodSHPII)
	PartitionSHPKL   = string(partition.MethodSHPKL)
	PartitionRandom  = string(partition.MethodRandom)
)

// PartitionGraph divides the nodes of g into m balanced parts using the
// named method ("louvain", "blp", "shpi", "shpii", "shpkl" or "random").
func PartitionGraph(g *Graph, m int, method string, seed int64) ([]uint32, error) {
	switch partition.Method(method) {
	case partition.MethodLouvain, partition.MethodBLP, partition.MethodSHPI,
		partition.MethodSHPII, partition.MethodSHPKL, partition.MethodRandom:
		return partition.Partition(g, m, partition.Method(method), seed), nil
	default:
		return nil, fmt.Errorf("pegasus: unknown partition method %q", method)
	}
}

// BuildSummaryCluster builds the Alg. 3 cluster: machine i holds a PeGaSus
// summary of g personalized to part i (labels in [0,m)), each within
// budgetBits. cfg carries the remaining PeGaSus settings (α, β, seed, ...).
// The m per-shard summaries build concurrently (§IV is communication-free,
// so the builds are independent) with up to GOMAXPROCS in flight; use
// BuildSummaryClusterCtx for cancellation and an explicit worker bound.
// Note that shard concurrency holds that many engines' working state in
// memory at once; bound it with BuildSummaryClusterCtx(..., workers) when
// building large graphs near the memory limit.
func BuildSummaryCluster(g *Graph, labels []uint32, m int, budgetBits float64, cfg Config) (*Cluster, error) {
	//lint:ctxflow public convenience entry point for callers without a context; the Ctx variant is the propagating path
	return BuildSummaryClusterCtx(context.Background(), g, labels, m, budgetBits, cfg, 0)
}

// BuildSummaryClusterCtx is BuildSummaryCluster with cooperative
// cancellation and an explicit bound on concurrent shard builds (workers;
// 0 = GOMAXPROCS, 1 = sequential). The first shard failure cancels the
// remaining builds. The resulting cluster is identical for every worker
// count and fixed seed.
//
// When cfg.Workers is 0 the worker budget is split between the two levels
// of parallelism — concurrent shard builds × in-engine scoring workers —
// so the build runs ~workers goroutines total instead of workers², the
// same policy the serving daemon applies to BuildWorkers.
func BuildSummaryClusterCtx(ctx context.Context, g *Graph, labels []uint32, m int, budgetBits float64, cfg Config, workers int) (*Cluster, error) {
	c, _, err := BuildSummaryClusterIncremental(ctx, g, labels, m, budgetBits, cfg,
		ClusterBuildOptions{Workers: workers})
	return c, err
}

// ClusterBuildStats reports how an incremental cluster build satisfied each
// shard (rebuilt from scratch vs transplanted from the previous cluster).
type ClusterBuildStats = distributed.BuildStats

// ClusterBuildOptions are the optional knobs of BuildSummaryClusterIncremental.
type ClusterBuildOptions struct {
	// Workers bounds concurrent shard builds (0 = GOMAXPROCS,
	// 1 = sequential); the cluster is identical for every value.
	Workers int
	// Targets, when non-empty, restricts personalization to a workload:
	// shard i's target set becomes the intersection of its partition part
	// with Targets, and parts containing no target keep Alg. 3's default
	// (personalization to the whole part) — so a target change confined to
	// one part rebuilds exactly that shard. Empty Targets personalizes
	// every shard to its whole part.
	Targets []NodeID
	// Prev is a previous cluster to reuse: shards whose content key —
	// a fingerprint of (graph, resolved targets, budget, workers-independent
	// config) — matches a shard of Prev are transplanted instead of rebuilt.
	// The transplanted artifacts are bit-identical to what a from-scratch
	// build would produce, so reuse only changes build time.
	Prev *Cluster
	// Store is an on-disk artifact store (OpenArtifactStore) consulted
	// after Prev: shards whose content key is filed there decode the
	// artifact instead of rebuilding — a warm start from a populated store
	// summarizes nothing — and freshly built shards are persisted back
	// best-effort. Corrupt or version-mismatched artifacts are rebuilt.
	Store *ArtifactStore
}

// BuildSummaryClusterIncremental is the reuse-aware cluster build: it
// rebuilds only the shards whose content key differs from every shard of
// opts.Prev and transplants the rest, returning per-shard build stats. With
// a nil Prev it degenerates to a full build that additionally records the
// content keys enabling future reuse.
//
// Configurations carrying a custom Threshold policy cannot be fingerprinted
// (core.Config.ContentKey); they build every shard and record no keys.
func BuildSummaryClusterIncremental(ctx context.Context, g *Graph, labels []uint32, m int, budgetBits float64, cfg Config, opts ClusterBuildOptions) (*Cluster, ClusterBuildStats, error) {
	if cfg.Workers == 0 && m > 0 {
		total := par.Workers(opts.Workers)
		concurrentShards := total
		if concurrentShards > m {
			concurrentShards = m
		}
		if perEngine := total / concurrentShards; perEngine >= 1 {
			cfg.Workers = perEngine
		} else {
			cfg.Workers = 1
		}
	}
	key, _ := core.Config(cfg).ContentKey() // "" (no reuse) on unkeyable configs
	return distributed.BuildSummaryClusterCtx(ctx, g, labels, m, budgetBits,
		distributed.PegasusSummarizer(core.Config(cfg)), distributed.BuildOpts{
			Workers:   opts.Workers,
			Targets:   opts.Targets,
			ConfigKey: key,
			Prev:      opts.Prev,
			Store:     opts.Store,
		})
}

// BuildSubgraphCluster builds the graph-partitioning alternative of §IV:
// machine i holds the subgraph of size ≤ budgetBits composed of the edges
// closest to part i.
func BuildSubgraphCluster(g *Graph, labels []uint32, m int, budgetBits float64) (*Cluster, error) {
	return distributed.BuildSubgraphCluster(g, labels, m, budgetBits)
}
