package pegasus

import (
	"context"

	"pegasus/internal/server"
)

// Serving --------------------------------------------------------------------
//
// pegasus-serve turns the communication-free multi-query answering scheme of
// §IV into a running system: a summary (or a sharded cluster of summaries)
// is held in memory and node-similarity queries are answered over HTTP, each
// routed to the shard owning the query node.

type (
	// ServerConfig parameterizes the serving daemon (listen address, shard
	// count, partition method, per-shard budget, cache size, worker pool,
	// timeouts).
	ServerConfig = server.Config
	// Server is the summary-serving HTTP daemon.
	Server = server.Server
	// QueryRequest is the JSON body of POST /v1/query/{kind}.
	QueryRequest = server.QueryRequest
	// QueryResponse is the JSON answer of POST /v1/query/{kind}.
	QueryResponse = server.QueryResponse
	// QueryParams are the algorithm parameters shared by the single-query
	// and batch endpoints (pointer fields distinguish "absent" from an
	// explicit value; see the type's docs for the default-selection rule).
	QueryParams = server.QueryParams
	// BatchRequest is the JSON body of POST /v1/query/batch: one kind, one
	// shared parameter set, and a vector of query nodes answered in a
	// single round-trip with per-item results and errors.
	BatchRequest = server.BatchRequest
	// BatchResponse is the JSON answer of POST /v1/query/batch.
	BatchResponse = server.BatchResponse
	// BatchItem is the per-node answer inside a BatchResponse.
	BatchItem = server.BatchItem
	// SummarizeRequest is the JSON body of POST /v1/summarize (pointer
	// fields: absent keeps the current setting; on sharded servers each
	// shard's target set is its partition part ∩ the requested targets).
	SummarizeRequest = server.SummarizeRequest
	// SummarizeResponse is the JSON answer of POST /v1/summarize: the new
	// per-shard report plus the incremental-rebuild outcome (rebuilt /
	// reused shard counts).
	SummarizeResponse = server.SummarizeResponse
	// MetricsSnapshot is the JSON answer of GET /metrics.
	MetricsSnapshot = server.Snapshot
)

// NewServer builds the serving artifact for g per cfg — a single summary, or
// an Alg. 3 cluster when cfg.Shards >= 2 — and returns a ready Server. This
// runs summarization and can take a while on large graphs.
func NewServer(ctx context.Context, g *Graph, cfg ServerConfig) (*Server, error) {
	return server.New(ctx, g, cfg)
}

// Serve builds the serving artifact and serves HTTP on cfg.Addr until ctx is
// cancelled, then drains gracefully.
func Serve(ctx context.Context, g *Graph, cfg ServerConfig) error {
	s, err := server.New(ctx, g, cfg)
	if err != nil {
		return err
	}
	return s.Run(ctx)
}
