package pegasus_test

// One benchmark per table/figure of the paper's evaluation (§V), each
// regenerating the corresponding experiment at the Quick profile, plus
// micro-benchmarks for the core operations. Run everything with
//
//	go test -bench=. -benchmem
//
// and individual experiments with e.g. -bench=BenchmarkFig7. The experiment
// tables themselves are produced by cmd/pegasus-experiments; these
// benchmarks track the cost of regenerating them.
import (
	"testing"

	"pegasus"
	"pegasus/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (dataset inventory).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig5 regenerates Fig. 5 (personalization effectiveness).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (linear scalability sweep).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7 (accuracy vs compression, RWR & HOP).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig7PHP regenerates the online appendix PHP panel of Fig. 7.
func BenchmarkFig7PHP(b *testing.B) { benchExperiment(b, "fig7php") }

// BenchmarkFig8 regenerates Fig. 8 (summarization and query times).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (effect of alpha).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (best alpha vs effective diameter).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (effect of beta).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12 (distributed multi-query answering).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig12PHP regenerates the appendix PHP panel of Fig. 12.
func BenchmarkFig12PHP(b *testing.B) { benchExperiment(b, "fig12php") }

// BenchmarkAblationRelativeCost regenerates the Eq. 11 vs Eq. 10 ablation.
func BenchmarkAblationRelativeCost(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkAblationThreshold regenerates the adaptive-vs-fixed threshold
// ablation (§III-E design choice).
func BenchmarkAblationThreshold(b *testing.B) { benchExperiment(b, "ablation-threshold") }

// BenchmarkAblationGrouping regenerates the shingle-vs-random candidate
// grouping ablation (§III-C design choice).
func BenchmarkAblationGrouping(b *testing.B) { benchExperiment(b, "ablation-grouping") }

// ---------------------------------------------------------------------------
// Micro-benchmarks for the core operations.

func benchGraph(b *testing.B, n, m int) *pegasus.Graph {
	b.Helper()
	g := pegasus.GenerateBA(n, m, 1)
	b.ResetTimer()
	return g
}

// BenchmarkSummarizePegasus measures end-to-end personalized summarization
// (|V|=2000, |E|≈6000, ratio 0.5).
func BenchmarkSummarizePegasus(b *testing.B) {
	g := benchGraph(b, 2000, 3)
	for i := 0; i < b.N; i++ {
		if _, err := pegasus.Summarize(g, pegasus.Config{
			Targets: []pegasus.NodeID{0, 1, 2}, BudgetRatio: 0.5, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummarizeSSumM measures the SSumM baseline on the same input.
func BenchmarkSummarizeSSumM(b *testing.B) {
	g := benchGraph(b, 2000, 3)
	for i := 0; i < b.N; i++ {
		if _, err := pegasus.SummarizeSSumM(g, pegasus.SSumMConfig{
			BudgetRatio: 0.5, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryRWR measures one block-accelerated RWR query on a summary.
func BenchmarkSummaryRWR(b *testing.B) {
	g := pegasus.GenerateBA(2000, 3, 1)
	res, err := pegasus.Summarize(g, pegasus.Config{BudgetRatio: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pegasus.SummaryRWR(res.Summary, pegasus.NodeID(i%2000), pegasus.RWRConfig{Eps: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryHOP measures one BFS query on a summary.
func BenchmarkSummaryHOP(b *testing.B) {
	g := pegasus.GenerateBA(2000, 3, 1)
	res, err := pegasus.Summarize(g, pegasus.Config{BudgetRatio: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pegasus.SummaryHOP(res.Summary, pegasus.NodeID(i%2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersonalizedError measures the O(|V|+|E|+|P|) objective
// evaluator.
func BenchmarkPersonalizedError(b *testing.B) {
	g := pegasus.GenerateBA(2000, 3, 1)
	res, err := pegasus.Summarize(g, pegasus.Config{BudgetRatio: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w, err := pegasus.NewWeights(g, []pegasus.NodeID{0}, 1.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pegasus.PersonalizedError(g, res.Summary, w)
	}
}
