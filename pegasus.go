package pegasus

import (
	"context"
	"io"

	"pegasus/internal/core"
	"pegasus/internal/gen"
	"pegasus/internal/graph"
	"pegasus/internal/metrics"
	"pegasus/internal/queries"
	"pegasus/internal/ssumm"
	"pegasus/internal/summary"
	"pegasus/internal/weights"
)

// Core types, re-exported from the internal packages so downstream users
// never import pegasus/internal/... directly.
type (
	// Graph is a simple undirected graph in CSR form.
	Graph = graph.Graph
	// NodeID identifies a node (dense integers 0..NumNodes-1).
	NodeID = graph.NodeID
	// Edge is an undirected edge.
	Edge = graph.Edge
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// Summary is a summary graph: supernodes partitioning the nodes plus
	// (optionally weighted) superedges.
	Summary = summary.Summary
	// Config parameterizes Summarize (targets, α, β, budget, ...).
	Config = core.Config
	// Result is the output of Summarize.
	Result = core.Result
	// IterStats is per-iteration engine telemetry (Config.Trace).
	IterStats = core.IterStats
	// SSumMConfig parameterizes SummarizeSSumM.
	SSumMConfig = ssumm.Config
	// RWRConfig parameterizes random walk with restart.
	RWRConfig = queries.RWRConfig
	// PHPConfig parameterizes penalized hitting probability.
	PHPConfig = queries.PHPConfig
	// Weights holds the personalized node weights of Eq. (2).
	Weights = weights.Weights
)

// NewGraphBuilder returns a builder for a graph with n nodes; out-of-range
// edge endpoints grow the node count, self-loops and duplicates are dropped.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// LoadGraph reads a whitespace-separated edge list ("u v" per line; '#' and
// '%' comments) from a file.
func LoadGraph(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveGraph writes a graph as an edge list.
func SaveGraph(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// WriteGraphCompressed serializes a graph with delta+varint coded adjacency
// (typically 3-6x smaller than fixed-width binary).
func WriteGraphCompressed(w io.Writer, g *Graph) error { return graph.WriteCompressed(w, g) }

// ReadGraphCompressed deserializes a graph written by WriteGraphCompressed.
func ReadGraphCompressed(r io.Reader) (*Graph, error) { return graph.ReadCompressed(r) }

// GraphStats summarizes structural properties of a graph.
type GraphStats = graph.Stats

// ComputeGraphStats measures degrees, triangles, transitivity and
// connectivity of g.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// LargestComponent extracts the largest connected component with renumbered
// node IDs (returned mapping: new ID → original ID).
func LargestComponent(g *Graph) (*Graph, []NodeID) { return graph.LargestComponent(g) }

// Summarize runs PeGaSus (Alg. 1 of the paper) and returns a summary graph
// personalized to cfg.Targets within the bit budget. cfg.Workers bounds the
// parallel build pipeline (0 = GOMAXPROCS); every worker count produces
// bit-identical summaries for a fixed seed.
func Summarize(g *Graph, cfg Config) (*Result, error) { return core.Summarize(g, cfg) }

// SummarizeCtx is Summarize with cooperative cancellation: the engine
// checks ctx between candidate groups and aborts with ctx.Err().
func SummarizeCtx(ctx context.Context, g *Graph, cfg Config) (*Result, error) {
	return core.SummarizeCtx(ctx, g, cfg)
}

// SummarizeNonPersonalized runs PeGaSus with T = V: the objective reduces to
// the plain reconstruction error while keeping the adaptive search.
func SummarizeNonPersonalized(g *Graph, cfg Config) (*Result, error) {
	return core.SummarizeNonPersonalized(g, cfg)
}

// SummarizeSSumM runs the SSumM baseline (Lee et al., KDD 2020): the
// non-personalized state of the art PeGaSus is built on (§III-G).
func SummarizeSSumM(g *Graph, cfg SSumMConfig) (*Result, error) { return ssumm.Summarize(g, cfg) }

// SummarizeSSumMCtx is SummarizeSSumM with cooperative cancellation.
func SummarizeSSumMCtx(ctx context.Context, g *Graph, cfg SSumMConfig) (*Result, error) {
	return ssumm.SummarizeCtx(ctx, g, cfg)
}

// LoadSummary reads a summary graph written by Summary.SaveFile.
func LoadSummary(path string) (*Summary, error) { return summary.LoadFile(path) }

// IdentitySummary returns the exact summary where every node is its own
// supernode (queries on it reproduce the input graph exactly).
func IdentitySummary(g *Graph) *Summary { return summary.Identity(g) }

// SummaryReport describes the structure of a summary graph (sizes, self
// loops, singleton count, ...); obtained via Summary.Describe.
type SummaryReport = summary.Report

// NewWeights computes the personalized weights of Eq. (2) for a target set
// and degree of personalization α ≥ 1.
func NewWeights(g *Graph, targets []NodeID, alpha float64) (*Weights, error) {
	return weights.New(g, targets, alpha)
}

// Query answering ------------------------------------------------------------

// GraphRWR computes exact random-walk-with-restart scores on the input
// graph.
func GraphRWR(g *Graph, q NodeID, cfg RWRConfig) ([]float64, error) {
	return queries.GraphRWR(g, q, cfg)
}

// SummaryRWR answers RWR approximately on a summary graph (block-accelerated
// Alg. 6).
func SummaryRWR(s *Summary, q NodeID, cfg RWRConfig) ([]float64, error) {
	return queries.SummaryRWR(s, q, cfg)
}

// GraphHOP computes exact hop distances (BFS) on the input graph.
func GraphHOP(g *Graph, q NodeID) ([]int32, error) { return queries.GraphHOP(g, q) }

// SummaryHOP answers HOP approximately on a summary graph (Alg. 5).
func SummaryHOP(s *Summary, q NodeID) ([]int32, error) { return queries.SummaryHOP(s, q) }

// GraphPHP computes exact penalized hitting probabilities on the input
// graph.
func GraphPHP(g *Graph, q NodeID, cfg PHPConfig) ([]float64, error) {
	return queries.GraphPHP(g, q, cfg)
}

// SummaryPHP answers PHP approximately on a summary graph.
func SummaryPHP(s *Summary, q NodeID, cfg PHPConfig) ([]float64, error) {
	return queries.SummaryPHP(s, q, cfg)
}

// FillUnreached replaces -1 distances with the maximum observed distance
// (the paper's convention for disconnected pairs).
func FillUnreached(dist []int32, fallback int32) []int32 {
	return queries.FillUnreached(dist, fallback)
}

// Evaluation -----------------------------------------------------------------

// SMAPE is the symmetric mean absolute percentage error (lower is better).
func SMAPE(x, xhat []float64) (float64, error) { return metrics.SMAPE(x, xhat) }

// Spearman is the Spearman rank correlation (higher is better).
func Spearman(x, xhat []float64) (float64, error) { return metrics.Spearman(x, xhat) }

// PersonalizedError evaluates the objective of Problem 1 (Eq. 1) exactly in
// O(|V|+|E|+|P|).
func PersonalizedError(g *Graph, s *Summary, w *Weights) float64 {
	return metrics.PersonalizedError(g, s, w)
}

// ReconstructionError evaluates the plain L1 reconstruction error.
func ReconstructionError(g *Graph, s *Summary) float64 {
	return metrics.ReconstructionError(g, s)
}

// Generators -----------------------------------------------------------------

// GenerateBA generates a Barabási–Albert preferential-attachment graph.
func GenerateBA(n, m int, seed int64) *Graph { return gen.BarabasiAlbert(n, m, seed) }

// GenerateWS generates a Watts–Strogatz small-world graph (k even).
func GenerateWS(n, k int, p float64, seed int64) *Graph { return gen.WattsStrogatz(n, k, p, seed) }

// GenerateER generates an Erdős–Rényi G(n,m) graph.
func GenerateER(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// GenerateSBM generates a planted-partition community graph.
func GenerateSBM(nodes, communities int, avgDegree, mixing float64, seed int64) *Graph {
	return gen.PlantedPartition(gen.SBMConfig{
		Nodes: nodes, Communities: communities, AvgDegree: avgDegree, MixingP: mixing,
	}, seed)
}

// GenerateGrid generates a w×h 4-neighbor lattice with a fraction of random
// highway chords — a road-network-like graph.
func GenerateGrid(w, h int, highways float64, seed int64) *Graph {
	return gen.Grid2D(w, h, highways, seed)
}
