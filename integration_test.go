package pegasus_test

// End-to-end integration tests exercising the full pipeline the paper's
// evaluation runs: dataset -> summarizer (all five methods) -> query
// answering (all three types) -> accuracy metrics, through internal
// packages the way the harness composes them.

import (
	"testing"

	"pegasus"
	"pegasus/internal/baselines/kgrass"
	"pegasus/internal/baselines/s2l"
	"pegasus/internal/baselines/saags"
	"pegasus/internal/datasets"
	"pegasus/internal/graph"
	"pegasus/internal/ssumm"
	"pegasus/internal/summary"
)

func TestIntegrationAllMethodsAllQueries(t *testing.T) {
	d, err := datasets.ByShort("LA")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Load(0.4)
	qs := graph.SampleNodes(g, 5, 1)

	summaries := map[string]*summary.Summary{}

	res, err := pegasus.Summarize(g, pegasus.Config{Targets: qs, BudgetRatio: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	summaries["pegasus"] = res.Summary
	sres, err := ssumm.Summarize(g, ssumm.Config{BudgetRatio: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	summaries["ssumm"] = sres.Summary
	k := g.NumNodes() / 2
	if kg, err := kgrass.Summarize(g, kgrass.Config{TargetSupernodes: k, Seed: 1}); err == nil {
		summaries["kgrass"] = kg
	} else {
		t.Fatal(err)
	}
	if sa, err := saags.Summarize(g, saags.Config{TargetSupernodes: k, Seed: 1}); err == nil {
		summaries["saags"] = sa
	} else {
		t.Fatal(err)
	}
	if sl, err := s2l.Summarize(g, s2l.Config{K: k, Seed: 1}); err == nil {
		summaries["s2l"] = sl
	} else {
		t.Fatal(err)
	}

	rwrCfg := pegasus.RWRConfig{Eps: 1e-6, MaxIter: 200}
	phpCfg := pegasus.PHPConfig{Eps: 1e-6, MaxIter: 200}
	for name, s := range summaries {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid summary: %v", name, err)
		}
		for _, q := range qs {
			exactR, err := pegasus.GraphRWR(g, q, rwrCfg)
			if err != nil {
				t.Fatal(err)
			}
			approxR, err := pegasus.SummaryRWR(s, q, rwrCfg)
			if err != nil {
				t.Fatalf("%s: RWR: %v", name, err)
			}
			sm, err := pegasus.SMAPE(exactR, approxR)
			if err != nil || sm < 0 || sm > 1 {
				t.Fatalf("%s: RWR SMAPE %v (%v)", name, sm, err)
			}
			sc, err := pegasus.Spearman(exactR, approxR)
			if err != nil || sc < -1 || sc > 1 {
				t.Fatalf("%s: RWR Spearman %v (%v)", name, sc, err)
			}

			hop, err := pegasus.SummaryHOP(s, q)
			if err != nil {
				t.Fatalf("%s: HOP: %v", name, err)
			}
			if hop[q] != 0 {
				t.Fatalf("%s: HOP at query node %d = %d", name, q, hop[q])
			}

			php, err := pegasus.SummaryPHP(s, q, phpCfg)
			if err != nil {
				t.Fatalf("%s: PHP: %v", name, err)
			}
			if php[q] != 1 {
				t.Fatalf("%s: PHP at query node = %v", name, php[q])
			}
		}
	}
}

func TestIntegrationPersonalizationBeatsNonPersonalizedOnErrors(t *testing.T) {
	// The core claim of the paper in one assertion, averaged for stability:
	// the personalized objective value around target nodes is lower for the
	// personalized summary than for the non-personalized one of equal size.
	d, err := datasets.ByShort("CA")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Load(0.6)
	targets := graph.SampleNodes(g, 20, 3)
	pers, err := pegasus.Summarize(g, pegasus.Config{Targets: targets, Alpha: 1.5, BudgetRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	nonp, err := pegasus.SummarizeNonPersonalized(g, pegasus.Config{BudgetRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := pegasus.NewWeights(g, targets, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pe := pegasus.PersonalizedError(g, pers.Summary, w)
	ne := pegasus.PersonalizedError(g, nonp.Summary, w)
	if pe >= ne {
		t.Fatalf("personalized error %v not below non-personalized %v", pe, ne)
	}
}

func TestIntegrationDistributedPipeline(t *testing.T) {
	d, err := datasets.ByShort("LA")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Load(0.4)
	labels, err := pegasus.PartitionGraph(g, 4, pegasus.PartitionLouvain, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.5 * g.SizeBits()
	cluster, err := pegasus.BuildSummaryCluster(g, labels, 4, budget, pegasus.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every node routes somewhere valid and queries answer.
	for u := 0; u < g.NumNodes(); u += 37 {
		i, err := cluster.Route(pegasus.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if int(i) >= len(cluster.Machines) {
			t.Fatalf("route %d out of range", i)
		}
	}
	if _, err := cluster.RWR(0, pegasus.RWRConfig{Eps: 1e-5, MaxIter: 100}); err != nil {
		t.Fatal(err)
	}
}
