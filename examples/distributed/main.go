// Distributed multi-query answering (§IV of the paper): four machines each
// hold a summary personalized to one Louvain part of a social graph; every
// query is answered by the machine owning the query node with zero
// inter-machine communication. The alternative — each machine holding a
// size-bounded local subgraph — is built for comparison.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"pegasus"
)

func main() {
	g := pegasus.GenerateSBM(1200, 12, 10, 0.1, 11)
	g, _ = pegasus.LargestComponent(g)
	fmt.Printf("graph: %v\n", g)

	const m = 4
	const ratio = 0.4
	budget := ratio * g.SizeBits()

	labels, err := pegasus.PartitionGraph(g, m, pegasus.PartitionLouvain, 1)
	if err != nil {
		log.Fatal(err)
	}
	summaryCluster, err := pegasus.BuildSummaryCluster(g, labels, m, budget, pegasus.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	subgraphCluster, err := pegasus.BuildSubgraphCluster(g, labels, m, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-machine budget: %.0f bits; summaries max %.0f, subgraphs max %.0f\n",
		budget, summaryCluster.MaxMachineBits(), subgraphCluster.MaxMachineBits())

	// Answer RWR queries for a sample of nodes on both clusters and compare
	// with the exact full-graph answers.
	queries := []pegasus.NodeID{3, 77, 402, 850}
	var smSummary, smSubgraph float64
	for _, q := range queries {
		exact, err := pegasus.GraphRWR(g, q, pegasus.RWRConfig{})
		if err != nil {
			log.Fatal(err)
		}
		a1, err := summaryCluster.RWR(q, pegasus.RWRConfig{})
		if err != nil {
			log.Fatal(err)
		}
		a2, err := subgraphCluster.RWR(q, pegasus.RWRConfig{})
		if err != nil {
			log.Fatal(err)
		}
		s1, _ := pegasus.SMAPE(exact, a1)
		s2, _ := pegasus.SMAPE(exact, a2)
		machine, _ := summaryCluster.Route(q)
		fmt.Printf("query %-4d -> machine %d: SMAPE summary=%.4f subgraph=%.4f\n", q, machine, s1, s2)
		smSummary += s1
		smSubgraph += s2
	}
	n := float64(len(queries))
	fmt.Printf("mean SMAPE: personalized summaries %.4f vs local subgraphs %.4f (lower is better)\n",
		smSummary/n, smSubgraph/n)
}
