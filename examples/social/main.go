// Social-network scenario (the paper's motivating example): users of an
// online social network care far more about connections near their friends
// than about strangers'. This example builds a community-structured social
// graph, summarizes it personalized to one user's circle, and shows that
// queries for that user are answered much more accurately than from a
// non-personalized summary of the same size.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"

	"pegasus"
)

func main() {
	// A social network with 20 communities.
	g := pegasus.GenerateSBM(2000, 20, 12, 0.08, 7)
	g, _ = pegasus.LargestComponent(g)
	fmt.Printf("social network: %v\n", g)

	// A group of users and their friends form the target set (e.g. the
	// active users served from one cache).
	users := []pegasus.NodeID{17, 410, 903, 1377, 1820}
	var circle []pegasus.NodeID
	for _, u := range users {
		circle = append(circle, u)
		circle = append(circle, g.Neighbors(u)...)
	}
	fmt.Printf("%d users with %d nodes in their circles\n", len(users), len(circle))

	const ratio = 0.3
	personalized, err := pegasus.Summarize(g, pegasus.Config{
		Targets: circle, Alpha: 1.5, BudgetRatio: ratio, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	global, err := pegasus.SummarizeNonPersonalized(g, pegasus.Config{
		BudgetRatio: ratio, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personalized summary: %v\nnon-personalized:     %v\n",
		personalized.Summary, global.Summary)

	// Compare all three query types averaged over the users.
	report := func(name string, s *pegasus.Summary) {
		var s1, s2, s3 float64
		for _, user := range users {
			exactRWR, _ := pegasus.GraphRWR(g, user, pegasus.RWRConfig{})
			exactHOPi, _ := pegasus.GraphHOP(g, user)
			exactHOP := toFloats(pegasus.FillUnreached(exactHOPi, int32(g.NumNodes())))
			exactPHP, _ := pegasus.GraphPHP(g, user, pegasus.PHPConfig{})
			rwr, _ := pegasus.SummaryRWR(s, user, pegasus.RWRConfig{})
			hopI, _ := pegasus.SummaryHOP(s, user)
			hop := toFloats(pegasus.FillUnreached(hopI, int32(g.NumNodes())))
			php, _ := pegasus.SummaryPHP(s, user, pegasus.PHPConfig{})
			a, _ := pegasus.SMAPE(exactRWR, rwr)
			b, _ := pegasus.SMAPE(exactHOP, hop)
			c, _ := pegasus.SMAPE(exactPHP, php)
			s1 += a
			s2 += b
			s3 += c
		}
		n := float64(len(users))
		fmt.Printf("%-16s SMAPE: RWR=%.4f HOP=%.4f PHP=%.4f\n", name, s1/n, s2/n, s3/n)
	}
	report("personalized", personalized.Summary)
	report("non-personalized", global.Summary)
	fmt.Println("(lower is better: the personalized summary should win on the users' queries)")
}

func toFloats(d []int32) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v)
	}
	return out
}
