// Road-network scenario (the paper's second motivating example): travelers
// navigating a road network care about roads near them, not across the
// country. This example builds a grid-like road network with a few highway
// chords, summarizes it personalized to a traveler's vicinity, and compares
// shortest-path (HOP) answers near the traveler against a summary of the
// same size personalized to the opposite corner.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"pegasus"
)

func main() {
	// A 40x40 lattice city with sparse highways: 1600 intersections.
	const w, h = 40, 40
	g := buildRoadNetwork(w, h)
	fmt.Printf("road network: %v\n", g)

	// The traveler is near the top-left corner; their vicinity is the
	// target set.
	traveler := pegasus.NodeID(w + 1)
	vicinity := nearby(g, traveler, 30)
	// A second traveler at the opposite corner.
	far := pegasus.NodeID(w*h - w - 2)
	farVicinity := nearby(g, far, 30)

	const ratio = 0.35
	local, err := pegasus.Summarize(g, pegasus.Config{
		Targets: vicinity, Alpha: 1.5, BudgetRatio: ratio, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := pegasus.Summarize(g, pegasus.Config{
		Targets: farVicinity, Alpha: 1.5, BudgetRatio: ratio, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	exactI, _ := pegasus.GraphHOP(g, traveler)
	exact := toFloats(pegasus.FillUnreached(exactI, int32(g.NumNodes())))
	for _, c := range []struct {
		name string
		s    *pegasus.Summary
	}{{"summary near traveler", local.Summary}, {"summary far away", remote.Summary}} {
		gotI, _ := pegasus.SummaryHOP(c.s, traveler)
		got := toFloats(pegasus.FillUnreached(gotI, int32(g.NumNodes())))
		sm, _ := pegasus.SMAPE(exact, got)
		sc, _ := pegasus.Spearman(exact, got)
		fmt.Printf("%-22s HOP from traveler: SMAPE=%.4f Spearman=%.4f\n", c.name, sm, sc)
	}
	fmt.Println("(the summary personalized near the traveler should answer their routes better)")
}

// buildRoadNetwork creates a w x h lattice with a handful of highway chords.
func buildRoadNetwork(w, h int) *pegasus.Graph {
	b := pegasus.NewGraphBuilder(w * h)
	id := func(x, y int) pegasus.NodeID { return pegasus.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	// Highways along the diagonals every 8 blocks.
	for i := 0; i+8 < w && i+8 < h; i += 8 {
		b.AddEdge(id(i, i), id(i+8, i+8))
		b.AddEdge(id(w-1-i, i), id(w-9-i, i+8))
	}
	return b.Build()
}

// nearby returns the k nodes closest to u (BFS order).
func nearby(g *pegasus.Graph, u pegasus.NodeID, k int) []pegasus.NodeID {
	d, _ := pegasus.GraphHOP(g, u)
	type nd struct {
		n pegasus.NodeID
		d int32
	}
	var all []nd
	for i, dist := range d {
		if dist >= 0 {
			all = append(all, nd{pegasus.NodeID(i), dist})
		}
	}
	// Selection by distance (stable small-k selection).
	for i := 0; i < k && i < len(all); i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]pegasus.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].n
	}
	return out
}

func toFloats(d []int32) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v)
	}
	return out
}
