// Centrality on summaries (Appendix A of the paper): most graph algorithms
// touch the graph only through the neighborhood query, so they run
// unchanged on a summary graph via the Oracle interface — trading exactness
// for a fraction of the memory. This example computes PageRank, eigenvector
// centrality, clustering coefficients and top-k RWR neighbors on a summary
// and measures how well they track the exact answers.
//
//	go run ./examples/centrality
package main

import (
	"fmt"
	"log"

	"pegasus"
)

func main() {
	g := pegasus.GenerateBA(3000, 4, 21)
	fmt.Printf("graph: %v (%.0f bits)\n", g, g.SizeBits())

	res, err := pegasus.SummarizeNonPersonalized(g, pegasus.Config{BudgetRatio: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("summary: %v (%.0f bits)\n", s, s.SizeBits())

	exact := pegasus.GraphOracle(g)
	approx := pegasus.SummaryOracle(s)

	// PageRank: rank correlation between exact and summary answers.
	prExact := pegasus.PageRank(exact, pegasus.PageRankConfig{})
	prApprox := pegasus.PageRank(approx, pegasus.PageRankConfig{})
	sc, _ := pegasus.Spearman(prExact, prApprox)
	fmt.Printf("PageRank rank correlation (summary vs exact): %.4f\n", sc)

	// Top-10 PageRank nodes overlap.
	te := pegasus.TopK(prExact, 10)
	ta := pegasus.TopK(prApprox, 10)
	fmt.Printf("top-10 PageRank exact:   %v\n", te)
	fmt.Printf("top-10 PageRank summary: %v (overlap %d/10)\n", ta, overlap(te, ta))

	// Eigenvector centrality.
	ecExact := pegasus.EigenvectorCentrality(exact, 0, 0)
	ecApprox := pegasus.EigenvectorCentrality(approx, 0, 0)
	sc2, _ := pegasus.Spearman(ecExact, ecApprox)
	fmt.Printf("eigenvector centrality rank correlation: %.4f\n", sc2)

	// Local RWR via forward push: the k-NN query of the appendix.
	hub := pegasus.TopK(prExact, 1)[0]
	push, err := pegasus.PushRWR(approx, hub, pegasus.PushConfig{})
	if err != nil {
		log.Fatal(err)
	}
	full, err := pegasus.GraphRWR(g, hub, pegasus.RWRConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RWR 10-NN of hub %d: exact %v\n", hub, pegasus.TopK(full, 10))
	fmt.Printf("                 summary+push %v (overlap %d/10)\n",
		pegasus.TopK(push, 10), overlap(pegasus.TopK(full, 10), pegasus.TopK(push, 10)))

	// Clustering coefficient of the hub.
	fmt.Printf("hub clustering coefficient: exact %.4f, summary %.4f\n",
		pegasus.ClusteringCoefficient(exact, hub), pegasus.ClusteringCoefficient(approx, hub))
}

func overlap(a, b []pegasus.NodeID) int {
	in := map[pegasus.NodeID]bool{}
	for _, u := range a {
		in[u] = true
	}
	n := 0
	for _, u := range b {
		if in[u] {
			n++
		}
	}
	return n
}
