// Quickstart: build a small graph, summarize it with a personalized budget,
// and answer queries directly on the summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pegasus"
)

func main() {
	// A small collaboration network: two tight groups bridged by node 4.
	b := pegasus.NewGraphBuilder(9)
	edges := [][2]pegasus.NodeID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, // group A: 0-3
		{4, 2}, {4, 5}, // bridge
		{5, 6}, {5, 7}, {6, 7}, {7, 8}, {8, 5}, // group B: 5-8
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	fmt.Printf("input graph: %v (%.0f bits)\n", g, g.SizeBits())

	// Summarize with a 60%% bit budget, personalized to node 0.
	res, err := pegasus.Summarize(g, pegasus.Config{
		Targets:     []pegasus.NodeID{0},
		Alpha:       1.5,
		BudgetRatio: 0.6,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("summary: %v (%.0f bits, ratio %.2f)\n", s, s.SizeBits(), s.CompressionRatio(g))

	// The summary answers neighborhood queries without reconstruction.
	for _, u := range []pegasus.NodeID{0, 5} {
		fmt.Printf("approx neighbors of %d: %v (exact: %v)\n", u, s.Neighbors(u), g.Neighbors(u))
	}

	// Node-similarity queries run directly on the summary too.
	exact, err := pegasus.GraphRWR(g, 0, pegasus.RWRConfig{})
	if err != nil {
		log.Fatal(err)
	}
	approx, err := pegasus.SummaryRWR(s, 0, pegasus.RWRConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sm, _ := pegasus.SMAPE(exact, approx)
	sc, _ := pegasus.Spearman(exact, approx)
	fmt.Printf("RWR from node 0: SMAPE=%.4f Spearman=%.4f\n", sm, sc)
}
